package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/repro/cobra/internal/batch"
)

func defaults() sweepDefaults {
	return sweepDefaults{
		graph: "rreg:256:3", process: "cobra", branch: 2, rho: 0,
		trials: 5, seed: 1, cellWorkers: 3,
	}
}

// Axis flags fall back to the scalar flags when empty, and the assembled
// spec carries every scalar — including the cell-workers knob.
func TestSweepSpecDefaults(t *testing.T) {
	spec, err := sweepSpec("", "", "", "", defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Graphs) != 1 || spec.Graphs[0] != "rreg:256:3" {
		t.Fatalf("graphs %v", spec.Graphs)
	}
	if len(spec.Processes) != 1 || spec.Processes[0] != "cobra" {
		t.Fatalf("processes %v", spec.Processes)
	}
	if len(spec.Branches) != 1 || spec.Branches[0] != 2 {
		t.Fatalf("branches %v", spec.Branches)
	}
	if len(spec.Rhos) != 1 || spec.Rhos[0] != 0 {
		t.Fatalf("rhos %v", spec.Rhos)
	}
	if spec.CellWorkers != 3 {
		t.Fatalf("cell workers %d, want 3", spec.CellWorkers)
	}
}

func TestSweepSpecAxes(t *testing.T) {
	spec, err := sweepSpec("rreg:256:3,ba:400:3", "cobra,bips", "2, 3", "0,0.5", defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Graphs) != 2 || len(spec.Processes) != 2 || len(spec.Branches) != 2 || len(spec.Rhos) != 2 {
		t.Fatalf("axes %v %v %v %v", spec.Graphs, spec.Processes, spec.Branches, spec.Rhos)
	}
	if spec.CellCount() != 16 {
		t.Fatalf("cell count %d", spec.CellCount())
	}
}

// Regression: malformed axis flags must be rejected with the offending
// flag named, never silently shrunk or passed through as a degenerate
// grid (empty entries used to be dropped; NaN rhos used to validate).
func TestSweepSpecRejectsBadAxes(t *testing.T) {
	cases := []struct {
		name                              string
		graphs, processes, branches, rhos string
		wantErr                           string
	}{
		{"empty graph entry", "rreg:256:3,,ba:400:3", "", "", "", "-graphs"},
		{"trailing graph comma", "rreg:256:3,", "", "", "", "-graphs"},
		{"only commas", ",", "", "", "", "-graphs"},
		{"empty process entry", "", "cobra,,bips", "", "", "-processes"},
		{"unknown process", "", "warp", "", "", "process"},
		{"duplicate process", "", "cobra,COBRA", "", "", "duplicate"},
		{"empty branch entry", "", "", "2,,3", "", "-branches"},
		{"non-integer branch", "", "", "2,x", "", "-branches"},
		{"non-positive branch", "", "", "0", "", "branch"},
		{"duplicate branch", "", "", "2,2", "", "duplicate"},
		{"empty rho entry", "", "", "", "0.5,,0.25", "-rhos"},
		{"non-numeric rho", "", "", "", "0.5,zap", "-rhos"},
		{"NaN rho", "", "", "", "nan", "rho"},
		{"infinite rho", "", "", "", "+inf", "rho"},
		{"out-of-range rho", "", "", "", "1.5", "rho"},
		{"duplicate rho", "", "", "", "0.5,0.5", "duplicate"},
		{"duplicate graphs canonically", "rreg:256:3,RREG:0256:3", "", "", "", "duplicate"},
	}
	for _, c := range cases {
		_, err := sweepSpec(c.graphs, c.processes, c.branches, c.rhos, defaults())
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// -format ndjson must emit exactly the bytes cobrad streams and journals
// for the same spec: one json.Marshal'd TrialResult per line, in trial
// order.
func TestRunNDJSONMatchesWireFormat(t *testing.T) {
	spec := batch.Spec{Graph: "rreg:256:3", Process: "cobra", Branch: 2, Trials: 8, Seed: 5}
	var got bytes.Buffer
	if err := runNDJSON(spec, &got); err != nil {
		t.Fatal(err)
	}

	c, err := batch.Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	if _, err := c.Run(context.Background(), func(r batch.TrialResult) {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("ndjson output diverged from the wire format:\n%s\nvs\n%s", got.String(), want.String())
	}
}

func TestSplitAxisStrict(t *testing.T) {
	out, err := splitAxis("-graphs", " a , b ", "fallback")
	if err != nil || len(out) != 2 || out[0] != "a" || out[1] != "b" {
		t.Fatalf("out=%v err=%v", out, err)
	}
	out, err = splitAxis("-graphs", "", "fallback")
	if err != nil || len(out) != 1 || out[0] != "fallback" {
		t.Fatalf("fallback: out=%v err=%v", out, err)
	}
	if _, err := splitAxis("-graphs", "a,,b", "f"); err == nil {
		t.Fatal("empty entry accepted")
	}
	if _, err := splitAxis("-graphs", " , ", "f"); err == nil {
		t.Fatal("all-empty list accepted")
	}
}
