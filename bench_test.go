package cobra

// Benchmark harness: one testing.B benchmark per experiment in DESIGN.md
// §4 (E1–E14 and the three ablations). Each benchmark regenerates its
// experiment table at Quick scale per iteration, so `go test -bench .`
// exercises the full reproduction pipeline; `cmd/experiments -scale full`
// produces the EXPERIMENTS.md numbers. Micro-benchmarks for the hot
// simulation loops follow at the bottom.

import (
	"testing"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/experiments"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

func benchExperiment(b *testing.B, run func(experiments.Params) (*sim.Table, error)) {
	b.Helper()
	p := experiments.Params{Seed: 1, Scale: experiments.Quick}
	for i := 0; i < b.N; i++ {
		tb, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1GeneralGraphs(b *testing.B) { benchExperiment(b, experiments.E1GeneralGraphs) }
func BenchmarkE2RegularGraphs(b *testing.B) { benchExperiment(b, experiments.E2RegularGraphs) }
func BenchmarkE3Hypercube(b *testing.B)     { benchExperiment(b, experiments.E3Hypercube) }
func BenchmarkE4Duality(b *testing.B)       { benchExperiment(b, experiments.E4Duality) }
func BenchmarkE5BIPS(b *testing.B)          { benchExperiment(b, experiments.E5BIPS) }
func BenchmarkE6Fractional(b *testing.B)    { benchExperiment(b, experiments.E6Fractional) }
func BenchmarkE7Expanders(b *testing.B)     { benchExperiment(b, experiments.E7Expanders) }
func BenchmarkE8Grids(b *testing.B)         { benchExperiment(b, experiments.E8Grids) }
func BenchmarkE9Growth(b *testing.B)        { benchExperiment(b, experiments.E9Growth) }
func BenchmarkE10Martingale(b *testing.B)   { benchExperiment(b, experiments.E10Martingale) }
func BenchmarkE11Candidates(b *testing.B)   { benchExperiment(b, experiments.E11Candidates) }
func BenchmarkE12Baselines(b *testing.B)    { benchExperiment(b, experiments.E12Baselines) }
func BenchmarkE13Conjecture(b *testing.B)   { benchExperiment(b, experiments.E13Conjecture) }
func BenchmarkAblationReplacement(b *testing.B) {
	benchExperiment(b, experiments.AblationReplacement)
}
func BenchmarkAblationLazy(b *testing.B) { benchExperiment(b, experiments.AblationLazy) }
func BenchmarkAblationParallelRound(b *testing.B) {
	benchExperiment(b, experiments.AblationParallel)
}

// --- Hot-loop micro-benchmarks ---

// BenchmarkCOBRARound measures one fully-active COBRA round (the
// worst-case per-round cost: every vertex pushes twice).
func BenchmarkCOBRARound(b *testing.B) {
	g := graph.Hypercube(12) // n = 4096, r = 12
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	p, err := core.New(g, core.Config{Branch: 2, Lazy: true}, all, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkBIPSRound measures one BIPS round (every vertex samples twice
// regardless of infection state — the paper's process is Θ(n·b) per
// round by construction).
func BenchmarkBIPSRound(b *testing.B) {
	g := graph.Hypercube(12)
	p, err := bips.New(g, bips.Config{Branch: 2, Lazy: true}, 0, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkCoverExpander measures an end-to-end COBRA cover on a random
// cubic expander (the Theorem 1.2 best case).
func BenchmarkCoverExpander(b *testing.B) {
	g, err := graph.RandomRegular(1024, 3, xrand.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CoverTime(g, core.Config{Branch: 2}, 0, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInfectionExpander measures an end-to-end BIPS infection on the
// same family (Theorem 1.5 best case).
func BenchmarkInfectionExpander(b *testing.B) {
	g, err := graph.RandomRegular(1024, 3, xrand.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bips.InfectionTime(g, bips.Config{Branch: 2}, 0, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialisedBIPSRound measures the serialised (per-step) round
// engine used by the martingale experiments, to quantify its overhead
// over the plain round.
func BenchmarkSerialisedBIPSRound(b *testing.B) {
	g := graph.Complete(512)
	p, err := bips.New(g, bips.Config{Branch: 2}, 0, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SerialRound(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14Concentration(b *testing.B) { benchExperiment(b, experiments.E14Concentration) }
