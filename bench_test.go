package cobra

// Benchmark harness: one testing.B benchmark per experiment in DESIGN.md
// §4 (E1–E14 and the three ablations). Each benchmark regenerates its
// experiment table at Quick scale per iteration, so `go test -bench .`
// exercises the full reproduction pipeline; `cmd/experiments -scale full`
// produces the EXPERIMENTS.md numbers. Micro-benchmarks for the hot
// simulation loops follow at the bottom.

import (
	"sync"
	"testing"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/experiments"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

func benchExperiment(b *testing.B, run func(experiments.Params) (*sim.Table, error)) {
	b.Helper()
	p := experiments.Params{Seed: 1, Scale: experiments.Quick}
	for i := 0; i < b.N; i++ {
		tb, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1GeneralGraphs(b *testing.B) { benchExperiment(b, experiments.E1GeneralGraphs) }
func BenchmarkE2RegularGraphs(b *testing.B) { benchExperiment(b, experiments.E2RegularGraphs) }
func BenchmarkE3Hypercube(b *testing.B)     { benchExperiment(b, experiments.E3Hypercube) }
func BenchmarkE4Duality(b *testing.B)       { benchExperiment(b, experiments.E4Duality) }
func BenchmarkE5BIPS(b *testing.B)          { benchExperiment(b, experiments.E5BIPS) }
func BenchmarkE6Fractional(b *testing.B)    { benchExperiment(b, experiments.E6Fractional) }
func BenchmarkE7Expanders(b *testing.B)     { benchExperiment(b, experiments.E7Expanders) }
func BenchmarkE8Grids(b *testing.B)         { benchExperiment(b, experiments.E8Grids) }
func BenchmarkE9Growth(b *testing.B)        { benchExperiment(b, experiments.E9Growth) }
func BenchmarkE10Martingale(b *testing.B)   { benchExperiment(b, experiments.E10Martingale) }
func BenchmarkE11Candidates(b *testing.B)   { benchExperiment(b, experiments.E11Candidates) }
func BenchmarkE12Baselines(b *testing.B)    { benchExperiment(b, experiments.E12Baselines) }
func BenchmarkE13Conjecture(b *testing.B)   { benchExperiment(b, experiments.E13Conjecture) }
func BenchmarkAblationReplacement(b *testing.B) {
	benchExperiment(b, experiments.AblationReplacement)
}
func BenchmarkAblationLazy(b *testing.B) { benchExperiment(b, experiments.AblationLazy) }
func BenchmarkAblationParallelRound(b *testing.B) {
	benchExperiment(b, experiments.AblationParallel)
}

// --- Hot-loop micro-benchmarks ---

// BenchmarkCOBRARound measures one fully-active COBRA round (the
// worst-case per-round cost: every vertex pushes twice).
func BenchmarkCOBRARound(b *testing.B) {
	g := graph.Hypercube(12) // n = 4096, r = 12
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	p, err := core.New(g, core.Config{Branch: 2, Lazy: true}, all, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkBIPSRound measures one BIPS round (every vertex samples twice
// regardless of infection state — the paper's process is Θ(n·b) per
// round by construction).
func BenchmarkBIPSRound(b *testing.B) {
	g := graph.Hypercube(12)
	p, err := bips.New(g, bips.Config{Branch: 2, Lazy: true}, 0, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkCoverExpander measures an end-to-end COBRA cover on a random
// cubic expander (the Theorem 1.2 best case).
func BenchmarkCoverExpander(b *testing.B) {
	g, err := graph.RandomRegular(1024, 3, xrand.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CoverTime(g, core.Config{Branch: 2}, 0, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInfectionExpander measures an end-to-end BIPS infection on the
// same family (Theorem 1.5 best case).
func BenchmarkInfectionExpander(b *testing.B) {
	g, err := graph.RandomRegular(1024, 3, xrand.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bips.InfectionTime(g, bips.Config{Branch: 2}, 0, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialisedBIPSRound measures the serialised (per-step) round
// engine used by the martingale experiments, to quantify its overhead
// over the plain round.
func BenchmarkSerialisedBIPSRound(b *testing.B) {
	g := graph.Complete(512)
	p, err := bips.New(g, bips.Config{Branch: 2}, 0, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SerialRound(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14Concentration(b *testing.B) { benchExperiment(b, experiments.E14Concentration) }

// --- Adaptive frontier-engine micro-benchmarks ---
//
// Sparse vs dense vs adaptive rounds on ≥10^5-vertex workloads across the
// families the engine targets: a circulant expander stand-in, a 2-d grid,
// and the two scale-free generators. These measure the representation
// crossover the Adaptive mode is built on (see internal/engine): wide
// frontiers should favour the dense word scan, near-empty frontiers the
// sparse slice. Worker count is pinned to 1 so the numbers isolate the
// representation, not goroutine scaling.

var (
	engineBenchOnce   sync.Once
	engineBenchGraphs map[string]*graph.Graph
)

func engineBenchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	engineBenchOnce.Do(func() {
		ba, err := graph.BarabasiAlbert(200_000, 3, xrand.New(1))
		if err != nil {
			panic(err)
		}
		ws, err := graph.WattsStrogatz(200_000, 6, 0.1, xrand.New(2))
		if err != nil {
			panic(err)
		}
		engineBenchGraphs = map[string]*graph.Graph{
			"expander": graph.Chord(200_000, 4), // 8-regular circulant
			"grid":     graph.Grid(450, 450),    // n = 202500
			"ba":       ba,
			"ws":       ws,
		}
	})
	return engineBenchGraphs[name]
}

var engineBenchModes = []struct {
	name      string
	mode      engine.Mode
	tileWords int
}{
	{"sparse", engine.ForceSparse, 0},
	{"dense", engine.ForceDense, 0}, // tiled, the default dense path
	{"dense-untiled", engine.ForceDense, -1},
	{"adaptive", engine.Adaptive, 0},
}

// BenchmarkEngineCobraWide measures one fully-active COBRA round — the
// wide-frontier regime where the dense word scan should win.
func BenchmarkEngineCobraWide(b *testing.B) {
	for _, gname := range []string{"expander", "grid", "ba", "ws"} {
		g := engineBenchGraph(b, gname)
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		for _, m := range engineBenchModes {
			b.Run(gname+"/"+m.name, func(b *testing.B) {
				k, err := engine.NewCobra(g, engine.Params{Branch: 2, Mode: m.mode, TileWords: m.tileWords, Workers: 1}, all, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Step()
				}
			})
		}
	}
}

// BenchmarkEngineCobraNarrow measures the b = 1 single-particle round —
// the narrow-frontier regime where the sparse slice avoids every Θ(n)
// touch and the dense scan pays the full word sweep for one vertex.
func BenchmarkEngineCobraNarrow(b *testing.B) {
	g := engineBenchGraph(b, "expander")
	for _, m := range engineBenchModes {
		b.Run("expander/"+m.name, func(b *testing.B) {
			k, err := engine.NewCobra(g, engine.Params{Branch: 1, Mode: m.mode, TileWords: m.tileWords, Workers: 1}, []int{0}, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
	}
}

// BenchmarkEngineBipsWide measures one BIPS round from a fully-infected
// frontier: the sparse path must stamp the whole edge set to build its
// candidate list, while the dense path is the paper's flat Θ(n·b) scan —
// the regime motivating the adaptive switch.
func BenchmarkEngineBipsWide(b *testing.B) {
	for _, gname := range []string{"expander", "ws"} {
		g := engineBenchGraph(b, gname)
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		for _, m := range engineBenchModes {
			b.Run(gname+"/"+m.name, func(b *testing.B) {
				k, err := engine.NewBips(g, engine.Params{Branch: 2, Mode: m.mode, TileWords: m.tileWords, Workers: 1}, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				k.InstallFrontier(all)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Step()
				}
			})
		}
	}
}

var (
	engineScalingOnce  sync.Once
	engineScalingGraph *graph.Graph
)

// BenchmarkEngineTiledScaling measures one wide COBRA round on a
// 2·10^7-vertex circulant across worker counts — the tiled kernel's
// scaling story (ROADMAP item 3). The kernel is workspace-backed, so the
// measured rounds must also be allocation-free; the "wmax" sub-benchmark
// pins GOMAXPROCS for cross-host comparison. The w8-vs-w1 ratio is gated
// in CI against the BENCH artifact.
func BenchmarkEngineTiledScaling(b *testing.B) {
	engineScalingOnce.Do(func() {
		engineScalingGraph = graph.Chord(20_000_000, 4)
	})
	g := engineScalingGraph
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	configs := []struct {
		name    string
		workers int
	}{
		{"w1", 1}, {"w2", 2}, {"w4", 4}, {"w8", 8}, {"wmax", 0},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			ws := engine.NewWorkspace()
			k, err := engine.NewCobraWith(ws, g,
				engine.Params{Branch: 2, Mode: engine.ForceDense, Workers: c.workers}, all, 1)
			if err != nil {
				b.Fatal(err)
			}
			k.Step() // warm up: spawn the pool, settle the frontier
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
	}
}

// BenchmarkEngineCoverAdaptive runs a full COBRA cover on a 10^5-vertex
// expander in each mode: end to end, the adaptive engine should match or
// beat both forced modes because a cover passes through both regimes.
func BenchmarkEngineCoverAdaptive(b *testing.B) {
	g := engineBenchGraph(b, "expander")
	for _, m := range engineBenchModes {
		b.Run("expander/"+m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k, err := engine.NewCobra(g, engine.Params{Branch: 2, Mode: m.mode, TileWords: m.tileWords, Workers: 1}, []int{0}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				for !k.Complete() {
					k.Step()
				}
			}
		})
	}
}
