package cobra

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeExactDuality(t *testing.T) {
	g := Cycle(7)
	for _, T := range []int{0, 2, 5} {
		lhs, err := ExactHitProbability(g, DefaultConfig(), []int{0}, 3, T)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := ExactMeetComplementProbability(g, DefaultConfig(), 3, []int{0}, T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Fatalf("T=%d: exact duality %v vs %v", T, lhs, rhs)
		}
	}
}

func TestFacadeExactExpectations(t *testing.T) {
	g := Complete(4)
	e, err := ExactExpectedInfectionTime(g, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e < 1 || e > 10 {
		t.Fatalf("E[infec] = %v", e)
	}
	h, err := ExactExpectedHitTime(g, DefaultConfig(), []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.5 || h > 5 {
		t.Fatalf("E[hit] = %v", h)
	}
	// Oversized graph rejected.
	if _, err := ExactExpectedInfectionTime(Cycle(ExactMaxN+1), DefaultConfig(), 0); err == nil {
		t.Fatal("oversized accepted")
	}
}

func TestFacadeFullSpectrum(t *testing.T) {
	eig, err := FullSpectrum(Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(eig) != 5 || math.Abs(eig[0]-1) > 1e-9 || math.Abs(eig[4]+0.25) > 1e-9 {
		t.Fatalf("K5 spectrum %v", eig)
	}
}

func TestFacadeStationaryAndMixing(t *testing.T) {
	g := Star(9)
	pi := StationaryDistribution(g)
	if math.Abs(pi[0]-0.5) > 1e-12 {
		t.Fatalf("hub mass %v", pi[0])
	}
	tm, err := WalkMixingTime(Complete(16), 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 10 {
		t.Fatalf("K16 mixing %d", tm)
	}
}

func TestFacadeParallelEngines(t *testing.T) {
	g := Complete(128)
	rounds, err := ParallelCoverTime(g, DefaultConfig(), 0, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 3 || rounds > 80 {
		t.Fatalf("parallel cover %d", rounds)
	}
	rounds, err = ParallelInfectionTime(g, DefaultConfig(), 0, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 3 || rounds > 80 {
		t.Fatalf("parallel infection %d", rounds)
	}
}

func TestFacadeSerialisation(t *testing.T) {
	g := Petersen()
	var buf bytes.Buffer
	if err := WriteEdgeList(g, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 10 || back.M() != 15 {
		t.Fatal("round trip failed")
	}
	buf.Reset()
	if err := WriteDOT(g, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty DOT")
	}
}

func TestFacadeExtraFamilies(t *testing.T) {
	if Spider(3, 4).N() != 13 {
		t.Fatal("spider wrong")
	}
	if DoubleCycle(8).M() != 16 {
		t.Fatal("double cycle wrong")
	}
	if Chord(9, 2).M() != 18 {
		t.Fatal("chord wrong")
	}
	g, err := RingExpander(50, 3)
	if err != nil || !g.IsConnected() {
		t.Fatal("ring expander wrong")
	}
}
