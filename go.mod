module github.com/repro/cobra

go 1.23
