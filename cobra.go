package cobra

import (
	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/duality"
	"github.com/repro/cobra/internal/gossip"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/spectral"
	"github.com/repro/cobra/internal/walk"
	"github.com/repro/cobra/internal/xrand"
)

// Graph is a simple undirected graph in compressed adjacency form. See
// the constructors below; a custom graph is built with NewBuilder.
type Graph = graph.Graph

// Builder incrementally assembles a custom Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// RNG is the deterministic random number generator used by all processes.
type RNG = xrand.RNG

// NewRNG returns a seeded generator; the same seed always reproduces the
// same simulation results.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Config selects the process variant shared by COBRA and BIPS.
type Config struct {
	// Branch is the integer branching factor b >= 1 (paper default: 2).
	Branch int
	// Rho adds a fractional extra branch with probability Rho, giving the
	// Section 6 branching factor Branch + Rho. Must be in [0, 1].
	Rho float64
	// Lazy makes each selection stay at the current vertex with
	// probability 1/2; required on bipartite graphs.
	Lazy bool
	// MaxRounds caps one run (0 = generous default); ErrRoundLimit-style
	// errors are returned if exceeded.
	MaxRounds int
}

// DefaultConfig returns the paper's primary setting, b = 2.
func DefaultConfig() Config { return Config{Branch: 2} }

func (c Config) core() core.Config {
	return core.Config{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy, MaxRounds: c.MaxRounds}
}

func (c Config) bips() bips.Config {
	return bips.Config{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy, MaxRounds: c.MaxRounds}
}

func (c Config) duality() duality.Config {
	return duality.Config{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy}
}

// --- Graph constructors (deterministic families) ---

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Path returns the path on n vertices (n >= 2).
func Path(n int) *Graph { return graph.Path(n) }

// Star returns the star K_{1,n-1}.
func Star(n int) *Graph { return graph.Star(n) }

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph { return graph.Hypercube(d) }

// Grid returns the multi-dimensional grid with the given side lengths.
func Grid(dims ...int) *Graph { return graph.Grid(dims...) }

// Torus returns the multi-dimensional torus with the given side lengths.
func Torus(dims ...int) *Graph { return graph.Torus(dims...) }

// BinaryTree returns the complete binary tree on n vertices.
func BinaryTree(n int) *Graph { return graph.BinaryTree(n) }

// Lollipop returns a clique with an attached path.
func Lollipop(cliqueSize, pathLen int) *Graph { return graph.Lollipop(cliqueSize, pathLen) }

// Barbell returns two cliques joined by a path.
func Barbell(cliqueSize, bridgeLen int) *Graph { return graph.Barbell(cliqueSize, bridgeLen) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return graph.CompleteBipartite(a, b) }

// Petersen returns the Petersen graph.
func Petersen() *Graph { return graph.Petersen() }

// --- Graph constructors (random families; deterministic in seed) ---

// ErdosRenyi samples a connected G(n, p) graph.
func ErdosRenyi(n int, p float64, seed uint64) (*Graph, error) {
	return graph.ErdosRenyi(n, p, xrand.New(seed))
}

// RandomRegular samples a connected random r-regular graph.
func RandomRegular(n, r int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, r, xrand.New(seed))
}

// RandomTree samples a uniform random labelled tree.
func RandomTree(n int, seed uint64) (*Graph, error) {
	return graph.RandomTree(n, xrand.New(seed))
}

// BarabasiAlbert samples a preferential-attachment graph on n vertices
// with m attachments per new vertex: connected, heavy-tailed degrees,
// cheap to generate at 10^5–10^6-vertex scale.
func BarabasiAlbert(n, m int, seed uint64) (*Graph, error) {
	return graph.BarabasiAlbert(n, m, xrand.New(seed))
}

// WattsStrogatz samples a connected small-world graph: the ring lattice
// C_n(1..k/2) with each edge rewired to a random endpoint with
// probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*Graph, error) {
	return graph.WattsStrogatz(n, k, beta, xrand.New(seed))
}

// --- COBRA ---

// Process is a stepwise COBRA simulation; create with NewProcess.
type Process = core.Process

// NewProcess creates a COBRA process with initial particle set start.
func NewProcess(g *Graph, cfg Config, start []int, rng *RNG) (*Process, error) {
	return core.New(g, cfg.core(), start, rng)
}

// CoverTime runs one COBRA trial from start and returns the number of
// rounds until every vertex has been visited.
func CoverTime(g *Graph, cfg Config, start int, seed uint64) (int, error) {
	return core.CoverTime(g, cfg.core(), start, xrand.New(seed))
}

// HitTime runs one COBRA trial and returns the first round at which
// target is visited.
func HitTime(g *Graph, cfg Config, start, target int, seed uint64) (int, error) {
	return core.HitTime(g, cfg.core(), start, target, xrand.New(seed))
}

// CoverTrace is the per-round trajectory of one COBRA run.
type CoverTrace = core.RoundTrace

// TraceCover runs one COBRA trial recording per-round set sizes.
func TraceCover(g *Graph, cfg Config, start int, seed uint64) (*CoverTrace, error) {
	return core.Trace(g, cfg.core(), start, xrand.New(seed))
}

// --- BIPS ---

// Epidemic is a stepwise BIPS simulation; create with NewEpidemic.
type Epidemic = bips.Process

// NewEpidemic creates a BIPS process with the given persistent source.
func NewEpidemic(g *Graph, cfg Config, source int, rng *RNG) (*Epidemic, error) {
	return bips.New(g, cfg.bips(), source, rng)
}

// InfectionTime runs one BIPS trial and returns the first round at which
// the whole graph is infected.
func InfectionTime(g *Graph, cfg Config, source int, seed uint64) (int, error) {
	return bips.InfectionTime(g, cfg.bips(), source, xrand.New(seed))
}

// InfectionTrace is the per-round trajectory of one BIPS run.
type InfectionTrace = bips.RoundTrace

// TraceInfection runs one BIPS trial recording per-round infected and
// candidate set sizes.
func TraceInfection(g *Graph, cfg Config, source int, seed uint64) (*InfectionTrace, error) {
	return bips.Trace(g, cfg.bips(), source, xrand.New(seed))
}

// --- Duality (Theorem 1.3) ---

// CheckDuality samples one shared selection table and replays COBRA
// forward and BIPS backward on it, returning both sides of the pathwise
// equivalence ("target hit within T" vs "starts ∩ A_T ≠ ∅"); Theorem 1.3
// asserts they are always equal.
func CheckDuality(g *Graph, cfg Config, starts []int, target, T int, seed uint64) (cobraHit, bipsMeet bool, err error) {
	return duality.CheckPathwise(g, cfg.duality(), starts, target, T, xrand.New(seed))
}

// --- Spectral properties ---

// SecondEigenvalue returns λ, the second-largest eigenvalue modulus of
// the random-walk matrix (1 for bipartite graphs).
func SecondEigenvalue(g *Graph) (float64, error) {
	return spectral.SecondEigenvalue(g, spectral.Options{})
}

// SpectralGap returns 1 − λ, the quantity parameterising Theorem 1.2.
func SpectralGap(g *Graph) (float64, error) {
	return spectral.Gap(g, spectral.Options{})
}

// LazySpectralGap returns 1 − λ for the lazy walk (I+P)/2, the relevant
// gap for lazy processes on bipartite graphs.
func LazySpectralGap(g *Graph) (float64, error) {
	lam, err := spectral.SecondEigenvalueLazy(g, spectral.Options{})
	if err != nil {
		return 0, err
	}
	return 1 - lam, nil
}

// Conductance returns an upper estimate of the graph conductance ϕ via a
// spectral sweep cut (exact for n <= 24 via ConductanceExact in the
// internal package).
func Conductance(g *Graph) (float64, error) {
	return spectral.ConductanceSweep(g, spectral.Options{})
}

// --- Baselines ---

// RandomWalkCover returns the number of steps a simple random walk needs
// to visit every vertex (the b = 1 baseline; Ω(n log n) on every graph).
func RandomWalkCover(g *Graph, start int, seed uint64) (int64, error) {
	return walk.CoverTime(g, start, false, xrand.New(seed))
}

// MultiWalkCover returns the number of synchronised rounds k independent
// random walks need to visit every vertex.
func MultiWalkCover(g *Graph, k, start int, seed uint64) (int64, error) {
	return walk.MultiCoverTime(g, k, start, xrand.New(seed))
}

// PushResult summarises a push-gossip broadcast run.
type PushResult = gossip.Result

// PushBroadcast runs the push protocol (informed vertices never stop
// pushing) and returns rounds and total messages.
func PushBroadcast(g *Graph, start int, seed uint64) (PushResult, error) {
	return gossip.Push(g, start, xrand.New(seed))
}
