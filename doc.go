// Package cobra is a library for simulating and analysing the
// coalescing-branching random walk (COBRA) and its dual epidemic process
// BIPS on undirected graphs, reproducing
//
//	Cooper, Radzik, Rivera — "Improved Cover Time Bounds for the
//	Coalescing-Branching Random Walk on Graphs", SPAA 2017.
//
// # The processes
//
// COBRA spreads one item of information in synchronous rounds: every
// vertex informed in the previous round pushes the item to b neighbours
// chosen uniformly at random with replacement; simultaneous arrivals
// coalesce. With b = 1 it degenerates to the simple random walk; the
// paper's case of interest is b = 2, where the cover time drops from the
// walk's Ω(n log n) to O(m + dmax² log n) on any connected graph and to
// O((r/(1−λ) + r²) log n) on r-regular graphs with eigenvalue gap 1−λ.
//
// BIPS (Biased Infection with Persistent Source) is the epidemic dual:
// every vertex re-samples its infected state each round by contacting b
// random neighbours, and one persistent source stays infected forever.
// Theorem 1.3 of the paper links them exactly:
//
//	P(COBRA from C misses v through round T) =
//	P(BIPS from source v infects no vertex of C at round T).
//
// # What the library provides
//
//   - Seeded, reproducible simulation of COBRA (integer, fractional
//     b = 1+ρ and lazy variants), BIPS (same variants plus the serialised
//     per-step view used by the paper's martingale analysis), the simple
//     and multiple random-walk baselines, and push gossip.
//   - Graph generators for the families in the paper's theorems and
//     examples (complete, cycles, paths, grids, tori, hypercubes, trees,
//     lollipops, barbells, random regular, Erdős–Rényi, ...), with exact
//     structural and spectral properties (diameter, bipartiteness, second
//     eigenvalue, conductance).
//   - A pathwise checker for the COBRA–BIPS duality and statistics
//     helpers for scaling-shape analysis.
//
// Everything in this package is a thin facade over the internal
// implementation packages; the facade is the supported API surface.
//
// # Quick start
//
//	g, err := cobra.RandomRegular(1024, 3, 7)     // 3-regular, seed 7
//	if err != nil { ... }
//	rounds, err := cobra.CoverTime(g, cobra.DefaultConfig(), 0, 42)
//	fmt.Printf("covered %d vertices in %d rounds\n", g.N(), rounds)
//
// See examples/ for runnable scenarios and cmd/experiments for the
// harness that regenerates every experiment table in EXPERIMENTS.md.
package cobra
