// Package cobra is a library for simulating and analysing the
// coalescing-branching random walk (COBRA) and its dual epidemic process
// BIPS on undirected graphs, reproducing
//
//	Cooper, Radzik, Rivera — "Improved Cover Time Bounds for the
//	Coalescing-Branching Random Walk on Graphs", SPAA 2017.
//
// # The processes
//
// COBRA spreads one item of information in synchronous rounds: every
// vertex informed in the previous round pushes the item to b neighbours
// chosen uniformly at random with replacement; simultaneous arrivals
// coalesce. With b = 1 it degenerates to the simple random walk; the
// paper's case of interest is b = 2, where the cover time drops from the
// walk's Ω(n log n) to O(m + dmax² log n) on any connected graph and to
// O((r/(1−λ) + r²) log n) on r-regular graphs with eigenvalue gap 1−λ.
//
// BIPS (Biased Infection with Persistent Source) is the epidemic dual:
// every vertex re-samples its infected state each round by contacting b
// random neighbours, and one persistent source stays infected forever.
// Theorem 1.3 of the paper links them exactly:
//
//	P(COBRA from C misses v through round T) =
//	P(BIPS from source v infects no vertex of C at round T).
//
// # What the library provides
//
//   - Seeded, reproducible simulation of COBRA (integer, fractional
//     b = 1+ρ and lazy variants), BIPS (same variants plus the serialised
//     per-step view used by the paper's martingale analysis), the simple
//     and multiple random-walk baselines, and push gossip.
//   - Graph generators for the families in the paper's theorems and
//     examples (complete, cycles, paths, grids, tori, hypercubes, trees,
//     lollipops, barbells, random regular, Erdős–Rényi, ...) plus
//     scalable random families for engine-scale workloads
//     (Barabási–Albert preferential attachment, Watts–Strogatz small
//     world), with exact structural and spectral properties (diameter,
//     bipartiteness, second eigenvalue, conductance).
//   - A pathwise checker for the COBRA–BIPS duality and statistics
//     helpers for scaling-shape analysis.
//
// Everything in this package is a thin facade over the internal
// implementation packages; the facade is the supported API surface.
//
// # Determinism contract
//
// All four round paths — COBRA and BIPS, serial and parallel — run on one
// shared frontier kernel (internal/engine). The randomness of every
// (round, vertex) pair derives from the run's master seed through a
// stateless stream hash, so a trajectory is a pure function of that seed:
// independent of worker count, of goroutine scheduling, and of the
// sparse/dense frontier representation the kernel picks per round. The
// serial constructors draw the master seed as one Uint64 from the RNG you
// pass; the parallel constructors take it directly. Identical seeds give
// identical per-round sets, cover times, infection traces, and
// transmission counts on every engine.
//
// # Performance notes
//
// The kernel switches representation per round, the direction-optimizing
// BFS idea applied to branching walks. A sparse round iterates an
// active-vertex slice and touches O(|frontier|·b) memory (COBRA),
// respectively O(vol(A_t)) (BIPS); a dense round scans the frontier
// bitset 64 vertices per word with no member slice at all.
//
// Dense rounds are tiled: the bitset is sharded into cache-sized word
// tiles (engine.DefaultTileWords, sized to keep a tile's frontier, next
// and covered words plus its CSR offsets L2-resident) that a pool of
// persistent worker goroutines pulls off an atomic cursor. Each tile
// pass fuses its bookkeeping — next-frontier popcount, frontier volume,
// newly-covered count — into the word scan, and the per-tile partials
// fold serially in ascending tile order, so the trajectory and every
// statistic remain a pure function of the seed regardless of tiling or
// worker count (the crossengine suites pin tiled, untiled and
// single-word-tile variants byte-for-byte). COBRA pushes that stay
// inside the scanned tile use plain stores (the scanner owns the tile's
// words until the round barrier); only cross-tile pushes pay for the
// shared atomic set, so rounds on locally-connected graphs are almost
// entirely lock-free. Steady-state wide rounds are allocation-free under
// workspace reuse at 2·10^7 vertices (BenchmarkEngineTiledScaling).
//
// Measured on 2·10^5-vertex workloads on the tiled kernel
// (BenchmarkEngineCobraWide/-Narrow, BenchmarkEngineBipsWide in
// bench_test.go): fully-active COBRA rounds run 2–3× faster dense than
// sparse, fully-infected BIPS rounds 2–4× faster dense, while a
// single-particle round is ~80× faster sparse. The adaptive defaults —
// dense when |C_t| > n/64 for COBRA (engine.DefaultDenseDiv,
// re-measured on the tiled kernel: breakeven sits near n/96–n/128, see
// BenchmarkEngineCrossover), when vol(A_t) > n for BIPS (confirmed:
// sparse and dense cross within a few percent at vol(A_t) ≈ n) — sit
// inside those crossovers and are not a public knob; the forced modes
// and tile-width override (internal/engine Params.Mode, Params.TileWords)
// exist for the repository's own benchmarks and equivalence tests.
//
// # Batch campaigns and the cobrad service
//
// The paper's theorems are statements about distributions over many
// independent trajectories, so the repository's scale axis is trials, not
// single runs. internal/batch runs campaigns — (graphspec, process
// config, trial count, master seed) — with amortized state: the graph is
// compiled once (and shared via an LRU cache keyed by canonical spec),
// and each worker constructs its per-trial kernels through a reusable
// engine.Workspace, so trials after the first pay no allocations and no
// connectivity re-check (BenchmarkBatchCampaign vs BenchmarkNaiveCoverLoop
// in internal/batch measures the gap on a 2·10^5-vertex workload).
// Per-trial results stream in trial order while summary statistics
// (mean/quantiles/CI, via the O(1)-memory stats.Online accumulator)
// aggregate on the fly. cmd/cobrad serves the same campaigns over
// HTTP/JSON as a long-running job service.
//
// The workspace-reuse contract: a workspace backs one live kernel at a
// time, and a kernel built through one produces bit for bit the
// trajectory of a freshly-allocated kernel. The campaign determinism
// invariant extends the engine contract one level up: trial k of a
// campaign is a pure function of (spec, config, seed, k) — identical
// across worker counts, graph-cache hits vs misses, and the HTTP vs
// library path. Both are enforced under -race by internal/engine and
// internal/batch tests.
//
// # Parameter sweeps
//
// batch.Sweep lifts campaigns to parameter grids: one submission carries
// axes (graph specs × processes × branch factors × rho values) that
// expand row-major — graphs outermost — into an ordered list of campaign
// cells. Cells execute concurrently, up to the sweep's CellWorkers, on a
// two-level scheduler: cells are *admitted* (compiled through one shared
// graph cache, so each distinct graph builds exactly once — even at
// cache capacity 1, because a graph's cells form one contiguous
// admission block) strictly in cell order, run on a bounded cell-worker
// pool sharing one workspace pool, and *commit* through a reorder buffer
// that delivers results and folds aggregates strictly in (cell, trial)
// order no matter which cells finish first; at most CellWorkers cells
// hold workspaces or buffered results at once. Every cell carries the
// sweep's master seed, making each cell byte-identical to submitting its
// spec as a standalone campaign, for every cell-worker count. cobrad
// exposes sweeps at POST /v1/sweeps (status with per-cell scheduler
// phases, NDJSON results in (cell, trial) order, and a cross-cell
// summary table) with a -cell-workers default; cobrasim -sweep prints
// the same grid as an aligned table or CSV; the experiment harness
// drives its E6 rho sweep and E16 Watts–Strogatz beta sweep through the
// same API, cells in parallel.
//
// # Durable jobs, priorities, deadlines
//
// cobrad run with -data journals every accepted job to an append-only
// NDJSON store (internal/store): the spec header is fsynced before the
// submission is acknowledged, result records are appended as trials
// commit, and a terminal record seals finished jobs. A restart replays
// the journals — finished jobs are restored with results served from
// disk, interrupted or queued jobs are requeued — and because a campaign
// is a pure function of (spec, seed, trial), the re-run reproduces the
// lost run byte for byte. The job queue orders by per-job priority
// (higher first, FIFO within a band; sweep cells inherit their sweep's
// priority), and a job whose RFC3339 deadline passes while it is still
// queued fails with the distinct terminal state "expired" instead of
// running. Shutdown leaves no job non-terminal: running jobs abort,
// queued jobs drain to a failed state, and results streams truncated by
// shutdown are flagged by the X-Cobrad-Stream trailer ("aborted" vs
// "complete"). Finished jobs' in-RAM result slices are bounded
// (-retain/-retain-ttl); evicted jobs serve results from their journals.
//
// # Observability
//
// cobrad exposes its internals without perturbing them. GET /metrics
// serves Prometheus text exposition (internal/obs, a dependency-free
// registry) covering every layer: job scheduler (queue depth by priority
// band, admission-wait latency, preemptions), sweep cell scheduler
// (per-cell wall time, reorder-buffer occupancy, backpressure stalls),
// graph cache (hits/misses/evictions), engine (trials executed, rounds
// by sparse/dense representation), and journal store (appends, fsync
// latency, resume-tail sizes, quarantines). GET /v1/stats returns the
// same counters as one JSON object; GET /v1/{campaigns,sweeps}/{id}/
// events streams a job's lifecycle as server-sent events (state
// transitions with rolling aggregates, per-cell phase changes, and a
// final end event mirroring the X-Cobrad-Stream trailer). Logs are
// structured (log/slog, -log-format text|json) with job ids and states
// as fields, and `cobrad -watch` renders a polling terminal status
// table against a running server.
//
// The observe-only invariant: metrics are atomic instruments updated
// beside the hot path, event streams are read-side followers of the
// same notification channel the results streams use, and nothing ever
// feeds back into scheduling or results — the determinism, conformance,
// and resume byte-identity suites hold with and without observers
// attached.
//
// # Distributed fleets
//
// cobrad scales past one process without changing a byte of output:
// `-role coordinator` turns the server into a lease authority that
// offers sweep cells to `-role worker` processes over a journal-backed
// lease protocol (heartbeat TTLs on the coordinator's clock; a dead
// worker's lease expires and its cell's uncomputed tail is re-leased
// elsewhere). Workers compute cells through the ordinary campaign
// machinery and stream results back; the coordinator merges them
// through the same reorder buffer as a local run, so the NDJSON
// stream, aggregates, journal, and event streams are byte-for-byte
// identical to single-process execution for every fleet topology —
// including mid-cell worker death (internal/fleet).
//
// # Quick start
//
//	g, err := cobra.RandomRegular(1024, 3, 7)     // 3-regular, seed 7
//	if err != nil { ... }
//	rounds, err := cobra.CoverTime(g, cobra.DefaultConfig(), 0, 42)
//	fmt.Printf("covered %d vertices in %d rounds\n", g.N(), rounds)
//
// See examples/ for runnable scenarios and cmd/experiments for the
// harness that regenerates every experiment table in EXPERIMENTS.md.
//
// # Further reading
//
// ARCHITECTURE.md maps the repository's layers (engine → batch →
// store → obs → fleet), states the determinism contract chain, and
// walks a sweep through every layer in fleet mode. docs/api.md
// documents every HTTP endpoint including the lease protocol and the
// SSE event grammar; docs/metrics.md documents every metric family.
package cobra
