package cobra

import (
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/xrand"
)

// Property-based check of Theorem 1.3 (pathwise COBRA–BIPS duality):
// for randomised (graph family, Config, starts, target, T, seed) cases,
// the two sides of CheckDuality — "target hit by COBRA from starts within
// T rounds" and "starts ∩ A_T ≠ ∅ for BIPS with source target" — must be
// equal on every sample. The case generator is hand-rolled: testing/quick
// supplies the case seed and everything else derives from it through
// xrand, so failures replay deterministically.

// dualityCaseGraph draws one graph from a family mix that spans the
// paper's regimes: dense, ring/path (diameter-bound), bipartite, heavy
// tail, small world, lattice.
func dualityCaseGraph(t *testing.T, rng *xrand.RNG) *Graph {
	t.Helper()
	switch rng.Intn(9) {
	case 0:
		return Complete(8 + rng.Intn(25))
	case 1:
		return Cycle(5 + rng.Intn(40))
	case 2:
		return Path(4 + rng.Intn(30))
	case 3:
		return Star(5 + rng.Intn(30))
	case 4:
		return Hypercube(3 + rng.Intn(3))
	case 5:
		return Grid(3+rng.Intn(4), 3+rng.Intn(4))
	case 6:
		g, err := BarabasiAlbert(30+rng.Intn(70), 2+rng.Intn(3), rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 7:
		g, err := WattsStrogatz(30+rng.Intn(70), 4, 0.2, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		return g
	default:
		return Petersen()
	}
}

// dualityCaseConfig draws a process variant; the duality holds for every
// branching factor b = Branch + Rho, lazy or not.
func dualityCaseConfig(rng *xrand.RNG) Config {
	cfg := Config{Branch: 1 + rng.Intn(3)}
	if rng.Bool() {
		cfg.Rho = float64(rng.Intn(4)) * 0.25
	}
	cfg.Lazy = rng.Bool()
	return cfg
}

func TestCheckDualityPropertyRandomised(t *testing.T) {
	f := func(caseSeed uint64) bool {
		rng := xrand.New(caseSeed)
		g := dualityCaseGraph(t, rng)
		cfg := dualityCaseConfig(rng)
		n := g.N()
		starts := make([]int, 1+rng.Intn(4))
		for i := range starts {
			starts[i] = rng.Intn(n)
		}
		target := rng.Intn(n)
		T := rng.Intn(13)
		hit, meet, err := CheckDuality(g, cfg, starts, target, T, rng.Uint64())
		if err != nil {
			t.Logf("caseSeed %d: CheckDuality error: %v", caseSeed, err)
			return false
		}
		if hit != meet {
			t.Logf("caseSeed %d: duality violated on %s cfg %+v starts %v target %d T %d",
				caseSeed, g.Name(), cfg, starts, target, T)
		}
		return hit == meet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The duality must also hold at T = 0 (membership of C_0 itself) and on
// the degenerate single-vertex start = target case — the boundary rows of
// the proof's induction.
func TestCheckDualityBoundaryCases(t *testing.T) {
	g := Cycle(9)
	for seed := uint64(0); seed < 20; seed++ {
		hit, meet, err := CheckDuality(g, DefaultConfig(), []int{4}, 4, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !hit || !meet {
			t.Fatalf("seed %d: start = target at T = 0 must hit on both sides", seed)
		}
		hit, meet, err = CheckDuality(g, DefaultConfig(), []int{0}, 4, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if hit || meet {
			t.Fatalf("seed %d: disjoint start/target at T = 0 must miss on both sides", seed)
		}
	}
}
