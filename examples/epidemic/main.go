// Epidemic: BIPS as a discrete SIS epidemic with a persistently infected
// host, the interpretation the paper offers for its dual process
// ("certain viruses exhibit the property that a particular host can
// become persistently infected").
//
// On a small-world-ish contact network the example traces the infection
// curve |A_t|/n, reports the time to full infection, and demonstrates the
// non-monotonicity of SIS dynamics (unlike COBRA's cover set, infection
// recedes when re-sampling fails), plus how the persistent source drags
// the system to total infection regardless.
//
// Run with: go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"strings"

	cobra "github.com/repro/cobra"
)

func main() {
	// Contact network: 2-D torus (local contacts) — slow spatial spread.
	local := cobra.Torus(31, 31)
	// Versus a well-mixed population: random 6-regular graph.
	mixed, err := cobra.RandomRegular(961, 6, 5)
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range []*cobra.Graph{local, mixed} {
		fmt.Printf("=== %s (n=%d) ===\n", g.Name(), g.N())
		tr, err := cobra.TraceInfection(g, cobra.DefaultConfig(), 0, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("time to full infection: %d rounds\n", tr.CompleteRound)

		// Infection curve at deciles of the run, with an ASCII bar.
		fmt.Println("round   infected  curve")
		steps := len(tr.InfectedSize)
		recessions := 0
		for i := 1; i < steps; i++ {
			if tr.InfectedSize[i] < tr.InfectedSize[i-1] {
				recessions++
			}
		}
		for k := 0; k <= 10; k++ {
			i := k * (steps - 1) / 10
			frac := float64(tr.InfectedSize[i]) / float64(g.N())
			bar := strings.Repeat("#", int(frac*40))
			fmt.Printf("%5d   %7.1f%%  %s\n", i, 100*frac, bar)
		}
		fmt.Printf("rounds where infection receded: %d (SIS is non-monotone)\n\n", recessions)
	}

	fmt.Println("reading: the well-mixed population saturates exponentially fast")
	fmt.Println("(Theorem 1.5 with constant gap), the spatial torus is held back by")
	fmt.Println("its small eigenvalue gap — the r/(1-lambda) term dominates.")
}
