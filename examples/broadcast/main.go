// Broadcast: the paper's motivating scenario — spreading one item of
// information through a communication network quickly while keeping the
// per-node, per-round transmission budget fixed, and without nodes having
// to stay active after forwarding.
//
// The example compares three protocols on a 4-regular random network:
//
//   - COBRA (b = 2): each node that received the item last round forwards
//     it to 2 random neighbours, then goes quiet until it receives again.
//   - Push gossip: every informed node forwards to 1 random neighbour
//     EVERY round, forever (fast, but total message cost keeps growing).
//   - Simple random walk (COBRA with b = 1): one token wanders (cheapest
//     per round, hopelessly slow to cover).
//
// Reported: rounds to reach all nodes, total messages, and the peak
// per-round message count — the paper's "limited number of transmissions
// per vertex per round" claim in numbers.
//
// Run with: go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	cobra "github.com/repro/cobra"
)

const (
	nodes  = 2048
	degree = 4
	seed   = 11
	trials = 20
)

func main() {
	g, err := cobra.RandomRegular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d-regular, diameter >= %d\n\n",
		g.N(), degree, g.DiameterApprox())

	// COBRA b=2: measure rounds + messages + peak active set via a
	// stepwise process so we can watch the per-round budget.
	var cobraRounds, cobraMsgs, cobraPeak, cobraCoal float64
	for k := 0; k < trials; k++ {
		p, err := cobra.NewProcess(g, cobra.DefaultConfig(), []int{0}, cobra.NewRNG(uint64(k)))
		if err != nil {
			log.Fatal(err)
		}
		peak := 0
		for !p.Complete() {
			if a := p.Current().Count(); a > peak {
				peak = a
			}
			p.Step()
		}
		cobraRounds += float64(p.Round())
		cobraMsgs += float64(p.Transmissions())
		cobraPeak += float64(peak)
		cobraCoal += float64(p.Coalesced())
	}
	cobraRounds /= trials
	cobraMsgs /= trials
	cobraPeak /= trials
	cobraCoal /= trials

	// Push gossip.
	var pushRounds, pushMsgs float64
	for k := 0; k < trials; k++ {
		res, err := cobra.PushBroadcast(g, 0, uint64(1000+k))
		if err != nil {
			log.Fatal(err)
		}
		pushRounds += float64(res.Rounds)
		pushMsgs += float64(res.Messages)
	}
	pushRounds /= trials
	pushMsgs /= trials

	// Simple random walk (b = 1): steps == messages.
	var rwSteps float64
	for k := 0; k < trials; k++ {
		steps, err := cobra.RandomWalkCover(g, 0, uint64(2000+k))
		if err != nil {
			log.Fatal(err)
		}
		rwSteps += float64(steps)
	}
	rwSteps /= trials

	fmt.Printf("%-22s %12s %14s %22s\n", "protocol", "rounds", "messages", "peak msgs/round")
	fmt.Printf("%-22s %12.1f %14.0f %22.1f\n", "COBRA b=2", cobraRounds, cobraMsgs, 2*cobraPeak)
	fmt.Printf("%-22s %12.1f %14.0f %22.0f\n", "push gossip", pushRounds, pushMsgs, float64(g.N()))
	fmt.Printf("%-22s %12.0f %14.0f %22d\n", "random walk (b=1)", rwSteps, rwSteps, 1)

	fmt.Printf("\nCOBRA coalescence: %.0f of %.0f transmissions (%.1f%%) landed on a node\n",
		cobraCoal, cobraMsgs, 100*cobraCoal/cobraMsgs)
	fmt.Println("already receiving that round — the \"CO\" in COBRA, wasted by design to")
	fmt.Println("keep the per-node budget at b messages.")
	fmt.Println("\nreading: COBRA needs push-like round counts at walk-like per-round cost;")
	fmt.Println("push keeps all n nodes transmitting every round, the walk crawls.")
}
