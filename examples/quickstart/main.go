// Quickstart: first contact with the cobra library in ~30 lines.
//
// Builds a random 3-regular graph, measures its spectral gap, runs one
// COBRA (b=2) trial and one BIPS trial, and checks the cover time against
// the paper's Theorem 1.2 bound shape.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	cobra "github.com/repro/cobra"
)

func main() {
	// A random 3-regular expander on 1024 vertices (seeded: reproducible).
	g, err := cobra.RandomRegular(1024, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	gap, err := cobra.SpectralGap(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: n=%d m=%d eigenvalue gap 1-lambda=%.4f\n",
		g.Name(), g.N(), g.M(), gap)

	// One COBRA run with the paper's parameters (b = 2).
	rounds, err := cobra.CoverTime(g, cobra.DefaultConfig(), 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Theorem 1.2: cover = O((r/(1-lambda) + r^2) log n).
	bound := (3/gap + 9) * math.Log(float64(g.N()))
	fmt.Printf("COBRA covered all %d vertices in %d rounds (Thm 1.2 shape: %.0f)\n",
		g.N(), rounds, bound)

	// The dual BIPS epidemic from the same vertex.
	infect, err := cobra.InfectionTime(g, cobra.DefaultConfig(), 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BIPS fully infected the graph in %d rounds\n", infect)

	// And the duality that links them (Theorem 1.3), checked pathwise.
	hit, meet, err := cobra.CheckDuality(g, cobra.DefaultConfig(), []int{0}, g.N()/2, 10, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duality check: COBRA-hit=%v BIPS-meet=%v (Theorem 1.3: always equal)\n",
		hit, meet)
}
