// Gridsweep: reproduces the paper's D-dimensional grid discussion at
// example scale. The cover time of COBRA (b=2) on a D-dimensional torus
// scales like n^{1/D} (up to polylog/D^2 factors — the O(D^2 n^{1/D})
// bound of Mitzenmacher et al. cited in the introduction), pinned from
// below by the universal bound max{log2 n, Diam(G)}.
//
// The example sweeps n for D = 1, 2, 3 and fits the scaling exponent by
// log-log regression, printing the fitted exponent next to the 1/D
// target.
//
// Run with: go run ./examples/gridsweep
package main

import (
	"fmt"
	"log"
	"math"

	cobra "github.com/repro/cobra"
)

const trials = 15

func main() {
	sweeps := []struct {
		d     int
		sides []int
	}{
		{1, []int{65, 129, 257, 513}},
		{2, []int{9, 15, 21, 31}},
		{3, []int{5, 7, 9}},
	}
	fmt.Println("COBRA b=2 cover time on D-dimensional tori (odd sides: non-bipartite)")
	for _, sw := range sweeps {
		fmt.Printf("\nD = %d\n%8s %10s %12s %10s\n", sw.d, "n", "diam", "mean cover", "cover/diam")
		var ns, covers []float64
		for _, s := range sw.sides {
			dims := make([]int, sw.d)
			for i := range dims {
				dims[i] = s
			}
			g := cobra.Torus(dims...)
			var mean float64
			for k := 0; k < trials; k++ {
				t, err := cobra.CoverTime(g, cobra.DefaultConfig(), 0, uint64(k))
				if err != nil {
					log.Fatal(err)
				}
				mean += float64(t)
			}
			mean /= trials
			diam := g.DiameterApprox()
			fmt.Printf("%8d %10d %12.1f %10.2f\n", g.N(), diam, mean, mean/float64(diam))
			ns = append(ns, float64(g.N()))
			covers = append(covers, mean)
		}
		exp := fitExponent(ns, covers)
		fmt.Printf("fitted exponent: %.3f (paper's shape: n^(1/D) = n^%.3f)\n",
			exp, 1/float64(sw.d))
	}
}

// fitExponent computes the least-squares slope of log(cover) vs log(n).
func fitExponent(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
