// Exactduality: Theorem 1.3 computed to machine precision, with no
// Monte-Carlo error on either side.
//
// The duality says that for every graph G, start set C, vertex v and
// horizon T,
//
//	P(COBRA from C has not hit v by round T)
//	  = P(BIPS with source v infects no vertex of C at round T).
//
// The left side is computed by evolving the distribution of COBRA's
// active set over all 2^n subsets with absorption at "v hit"; the right
// side by evolving BIPS's infected-set distribution as a product-Bernoulli
// chain. The two recursions share no code path — their agreement below,
// digit for digit, is the theorem itself.
//
// Run with: go run ./examples/exactduality
package main

import (
	"fmt"
	"log"
	"math"

	cobra "github.com/repro/cobra"
)

func main() {
	cases := []struct {
		name string
		g    *cobra.Graph
		cfg  cobra.Config
	}{
		{"petersen, b=2", cobra.Petersen(), cobra.DefaultConfig()},
		{"cycle-9, b=1.5", cobra.Cycle(9), cobra.Config{Branch: 1, Rho: 0.5}},
		{"star-8, b=2 lazy", cobra.Star(8), cobra.Config{Branch: 2, Lazy: true}},
	}
	for _, tc := range cases {
		fmt.Printf("=== %s (n=%d) ===\n", tc.name, tc.g.N())
		fmt.Printf("%3s %22s %22s %10s\n", "T", "P(COBRA misses v)", "P(BIPS misses C)", "|diff|")
		target := tc.g.N() - 1
		worst := 0.0
		for _, T := range []int{0, 1, 2, 4, 8, 16} {
			lhs, err := cobra.ExactHitProbability(tc.g, tc.cfg, []int{0}, target, T)
			if err != nil {
				log.Fatal(err)
			}
			rhs, err := cobra.ExactMeetComplementProbability(tc.g, tc.cfg, target, []int{0}, T)
			if err != nil {
				log.Fatal(err)
			}
			diff := math.Abs(lhs - rhs)
			if diff > worst {
				worst = diff
			}
			fmt.Printf("%3d %22.15f %22.15f %10.1e\n", T, lhs, rhs, diff)
		}
		fmt.Printf("max |difference| = %.2e (Theorem 1.3, exactly)\n\n", worst)

		// And the exact expectations the theorems bound:
		eInf, err := cobra.ExactExpectedInfectionTime(tc.g, tc.cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		eHit, err := cobra.ExactExpectedHitTime(tc.g, tc.cfg, []int{0}, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("E[infection time from 0] = %.6f rounds, E[Hit(%d)] = %.6f rounds\n\n",
			eInf, target, eHit)
	}
}
